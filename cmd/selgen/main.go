// Command selgen synthesizes an instruction-selection rule library from
// the semantic specifications in internal/ir and a machine backend
// (internal/x86 or internal/riscv) and writes it as JSON (the pattern
// database of §3).
//
// Usage:
//
//	selgen -setup basic -o rule-library.json
//	selgen -setup full -width 8 -timeout 30s -o full.json
//	selgen -target riscv -setup quick -o riscv.json
//	selgen -setup bmi -v
//	selgen -setup quick -trace trace.json   # Chrome trace_event output
//	selgen -setup full -journal run.journal # crash-safe checkpointing
//	selgen -setup full -resume run.journal  # continue an interrupted run
//	selgen -setup full -status :6060        # live /metrics, /goals, pprof
//	selgen -setup full -events run.jsonl    # structured JSONL event log
//
// As a farm worker (spawned by selfarm, not usually by hand):
//
//	selgen -farm http://127.0.0.1:PORT -farm-id 0 -journal worker-0.journal
//
// SIGINT/SIGTERM request a graceful stop: in-flight goals finish and are
// journaled, the partial library is written, telemetry shuts down, and
// the process exits with code 3 (distinct from 1 = error, 2 = usage) so
// a supervisor can tell "interrupted, resumable" from "failed".
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selgen/internal/driver"
	"selgen/internal/failpoint"
	"selgen/internal/farm"
	"selgen/internal/journal"
	"selgen/internal/obs"
	"selgen/internal/target"
	"selgen/internal/telemetry"
)

// Exit codes: 0 = success, 1 = error, 2 = usage, 3 = interrupted
// (journal flushed; the run is resumable).
const exitInterrupted = 3

func main() { os.Exit(run()) }

func run() int {
	var (
		tgtName   = flag.String("target", "x86", "machine backend: x86 or riscv")
		setup     = flag.String("setup", "basic", "goal set: basic, full, quick, rotate, plus bmi (x86) or zbb (riscv)")
		width     = flag.Int("width", 8, "word width W of the semantic models")
		out       = flag.String("o", "rule-library.json", "output pattern database")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-goal synthesis timeout")
		maxPat    = flag.Int("max-patterns", 64, "max patterns per goal (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "test-case seed")
		workers   = flag.Int("sat-workers", 1, "diversified SAT portfolio workers for hard verification queries (1 = sequential)")
		verbose   = flag.Bool("v", false, "print per-goal progress")
		trace     = flag.String("trace", "", "write a Chrome trace_event JSON file (view in chrome://tracing or Perfetto)")
		check     = flag.Bool("check-selection", false, "after synthesis, select the synthetic Table 1 workload with the new library and report coverage and matching effort (isel.* spans land in -trace)")
		jpath     = flag.String("journal", "", "write a crash-safe run journal (JSONL checkpoint) to this file; with -farm, the worker's shard")
		resume    = flag.String("resume", "", "resume an interrupted run from this journal (implies -journal on the same file)")
		faults    = flag.String("faults", "", "arm fault-injection points, e.g. 'sat.worker.crash=once,journal.kill=hit:2' (testing only)")
		fseed     = flag.Int64("fault-seed", 1, "seed for probabilistic fault-injection modes")
		retries   = flag.Int("max-retries", 0, "retry-ladder depth for budget failures (0 = default, negative = single attempt, non-deadline errors fatal)")
		costAware = flag.Bool("cost-aware", true, "enumerate multisets in ascending cycle cost and prune dominated rules (false = exhaustive size-major ablation)")
		status    = flag.String("status", "", "serve live telemetry (Prometheus /metrics, per-goal /goals, /debug/pprof) on this address, e.g. :6060 (empty = no server)")
		linger    = flag.Duration("status-linger", 0, "keep the -status server up this long after the run finishes (a final scrape window)")
		events    = flag.String("events", "", "append a structured JSONL event log to this file")
		eventsLvl = flag.String("events-level", "info", "minimum -events level: debug, info, warn, or error")
		farmURL   = flag.String("farm", "", "run as a synthesis-farm worker against this coordinator URL (spawned by selfarm; requires -farm-id and -journal for the shard)")
		farmID    = flag.Int("farm-id", -1, "this worker's farm identity (with -farm)")
	)
	flag.Parse()

	tgt, err := target.ByName(*tgtName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 2
	}
	groups, err := driver.SetupFor(tgt.Name, *setup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 2
	}

	tracer := obs.New()
	if *trace != "" {
		tracer.EnableTrace()
	}
	if *events != "" {
		lvl, err := obs.ParseLevel(*eventsLvl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
			return 2
		}
		ef, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
			return 1
		}
		defer ef.Close()
		tracer.SetEventSink(ef, lvl)
	}
	reg, err := failpoint.Parse(*faults, *fseed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 2
	}
	opts := driver.Options{
		Target:             tgt.Name,
		Width:              *width,
		PerGoalTimeout:     *timeout,
		MaxPatternsPerGoal: *maxPat,
		Seed:               *seed,
		SatWorkers:         *workers,
		Obs:                tracer,
		MaxRetries:         *retries,
		Faults:             reg,
		DisableCostAware:   !*costAware,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}

	// A first SIGINT/SIGTERM requests a graceful stop — in-flight goals
	// finish and land in the journal, then the run winds down. A second
	// signal falls through to the default handler and kills the process.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "selgen: %v — finishing in-flight goals and flushing the journal (again to kill)\n", s)
		close(stop)
		signal.Stop(sigc)
	}()

	var statusSrv *telemetry.Server
	if *status != "" {
		state := driver.NewRunState()
		statusSrv, err = telemetry.Start(*status, tracer, state)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
			return 1
		}
		opts.State = state
		fmt.Fprintf(os.Stderr, "selgen: telemetry listening on %s (/metrics /goals /debug/pprof)\n", statusSrv.URL())
	}

	if *farmURL != "" {
		code := runFarmWorker(*farmURL, *farmID, *jpath, groups, opts, *setup, statusSrv, stop)
		if statusSrv != nil {
			statusSrv.Close()
		}
		return code
	}
	opts.Stop = stop

	if *resume != "" && *jpath != "" && *resume != *jpath {
		fmt.Fprintf(os.Stderr, "selgen: -resume and -journal name different files; -resume continues journaling in place\n")
		return 2
	}
	if *resume != "" || *jpath != "" {
		hdr := journal.Header{
			Version:    journal.Version,
			Setup:      *setup,
			Width:      *width,
			Target:     tgt.Name,
			ConfigHash: driver.ConfigHash(groups, opts),
		}
		var jw *journal.Writer
		if *resume != "" {
			var rec *journal.Recovered
			jw, rec, err = journal.Resume(*resume, hdr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
				return 1
			}
			opts.Resume = rec.Index()
			opts.ResumeDuplicates = rec.Duplicates
			if *verbose {
				fmt.Fprintf(os.Stderr, "selgen: resuming from %s: %d goals recorded (%d duplicate(s) ignored), %d torn bytes truncated\n",
					*resume, len(rec.Goals), len(rec.Duplicates), rec.TruncatedBytes)
			}
		} else {
			jw, err = journal.Create(*jpath, hdr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
				return 1
			}
		}
		jw.Faults = reg
		opts.Journal = jw
		defer jw.Close()
	}

	start := time.Now()
	lib, rep, err := driver.Run(groups, opts)
	interrupted := errors.Is(err, driver.ErrInterrupted)
	if err != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 1
	}

	var selRep *driver.SelectionReport
	if *check && !interrupted {
		selRep, err = driver.SelectionCheck(lib, tgt, *width, *seed, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
			return 1
		}
	}

	if *trace != "" {
		tf, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
			return 1
		}
		if err := tracer.WriteChromeTrace(tf); err != nil {
			fmt.Fprintf(os.Stderr, "selgen: writing trace: %v\n", err)
			return 1
		}
		if err := tf.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "selgen: trace with %d events written to %s\n", tracer.NumEvents(), *trace)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 1
	}
	if err := lib.Save(f); err != nil {
		fmt.Fprintf(os.Stderr, "selgen: saving library: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 1
	}

	rep.WriteTable(os.Stdout)
	if selRep != nil {
		selRep.Write(os.Stdout)
	}
	fmt.Printf("\n%d rules written to %s in %s\n", len(lib.Rules), *out, time.Since(start).Round(time.Millisecond))

	if statusSrv != nil {
		// The linger window lets a scraper take one final /metrics and
		// /goals reading (every goal terminal) before the process exits.
		if *linger > 0 {
			time.Sleep(*linger)
		}
		if err := statusSrv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "selgen: telemetry shutdown: %v\n", err)
			return 1
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "selgen: run interrupted — journal flushed; resume with -resume\n")
		return exitInterrupted
	}
	return 0
}

// runFarmWorker runs the farm-worker loop: lease goals from the
// coordinator at coordURL, synthesize each through the same driver a
// single-process run uses, journal it into the shard, report back.
func runFarmWorker(coordURL string, id int, shard string, groups []driver.Group,
	opts driver.Options, setup string, statusSrv *telemetry.Server, stop <-chan struct{}) int {
	if id < 0 {
		fmt.Fprintf(os.Stderr, "selgen: -farm requires -farm-id\n")
		return 2
	}
	if shard == "" {
		fmt.Fprintf(os.Stderr, "selgen: -farm requires -journal (the worker's shard)\n")
		return 2
	}
	hdr := journal.Header{
		Version:    journal.Version,
		Setup:      setup,
		Width:      opts.Width,
		Target:     opts.Target,
		ConfigHash: driver.ConfigHash(groups, opts),
	}
	var telURL string
	if statusSrv != nil {
		telURL = statusSrv.URL()
	}
	err := farm.RunWorker(farm.WorkerConfig{
		ID: id, Coord: coordURL, Groups: groups, Opts: opts,
		Header: hdr, Shard: shard, Telemetry: telURL, Stop: stop,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "selgen: %v\n", err)
		return 1
	}
	select {
	case <-stop:
		fmt.Fprintf(os.Stderr, "selgen: worker %d interrupted — shard flushed\n", id)
		return exitInterrupted
	default:
	}
	return 0
}
