// Command bvsat is a miniature QF_BV SMT solver speaking SMT-LIB v2 —
// the role Z3 plays in the reproduced paper's toolchain, exposed as a
// standalone tool over this repository's SAT/bit-blasting stack.
//
// Usage:
//
//	bvsat file.smt2
//	echo '(declare-const x (_ BitVec 8)) (assert (= x #x2a)) (check-sat) (get-model)' | bvsat
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"selgen/internal/smt"
	"selgen/internal/smtlib"
)

func main() {
	timeout := flag.Duration("timeout", 0, "per-check timeout (0 = none)")
	conflicts := flag.Int64("conflicts", 0, "per-check conflict budget (0 = none)")
	workers := flag.Int("sat-workers", 1, "diversified SAT portfolio workers per check-sat (1 = sequential)")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: bvsat [file.smt2]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvsat: %v\n", err)
		os.Exit(1)
	}

	script := smtlib.NewScript()
	script.Opts = smt.Options{MaxConflicts: *conflicts, PortfolioWorkers: *workers}
	if *timeout > 0 {
		script.Opts.Timeout = *timeout
	}
	if err := script.Run(string(src), os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "bvsat: %v\n", err)
		os.Exit(1)
	}
}
