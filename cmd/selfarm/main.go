// Command selfarm runs the fault-tolerant distributed synthesis farm:
// a lease-based coordinator that shards a setup's goal list across N
// `selgen -farm` worker processes, heals worker crashes and stalls, and
// merges the workers' journal shards into a rule library byte-identical
// to a single-process `selgen` run of the same configuration.
//
// Usage:
//
//	selfarm -workers 4 -setup full -o full.json
//	selfarm -workers 4 -setup full -o full.json -lease 5m
//	selfarm -resume -workers 4 -setup full -o full.json
//	selfarm -target riscv -setup quick -workers 2 -o riscv.json
//
// The farm's working directory (-dir, default <output>.farm) holds the
// coordinator's lease journal and one journal shard per worker. Every
// lease-table transition and every finished goal is fsync'd before it
// is acted on, so any process in the farm — workers or the coordinator
// itself — can be SIGKILL'd at any instant and `selfarm -resume` (same
// flags, same -dir) completes the run without redoing durable work.
//
// SIGINT/SIGTERM stop the farm gracefully: workers exit, journals stay
// intact, and the process exits with code 3 (resumable), distinct from
// 1 (error) and 2 (usage).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"selgen/internal/driver"
	"selgen/internal/failpoint"
	"selgen/internal/farm"
	"selgen/internal/journal"
	"selgen/internal/obs"
	"selgen/internal/target"
)

const exitInterrupted = 3

func main() { os.Exit(run()) }

func run() int {
	var (
		tgtName   = flag.String("target", "x86", "machine backend: x86 or riscv")
		setup     = flag.String("setup", "basic", "goal set: basic, full, quick, rotate, plus bmi (x86) or zbb (riscv)")
		width     = flag.Int("width", 8, "word width W of the semantic models")
		out       = flag.String("o", "rule-library.json", "output pattern database")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-goal synthesis timeout")
		maxPat    = flag.Int("max-patterns", 64, "max patterns per goal (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "test-case seed")
		satWkr    = flag.Int("sat-workers", 1, "diversified SAT portfolio workers inside each farm worker")
		retries   = flag.Int("max-retries", 0, "retry-ladder depth for budget failures (0 = default)")
		costAware = flag.Bool("cost-aware", true, "cost-ordered enumeration and dominance pruning")
		verbose   = flag.Bool("v", false, "pass worker stderr through and print farm events")

		workers  = flag.Int("workers", 2, "worker processes to shard the goal list across")
		lease    = flag.Duration("lease", 2*time.Minute, "per-goal lease deadline; an expired lease is reclaimed and reassigned")
		attempts = flag.Int("max-attempts", 4, "lease grants per goal before it is quarantined")
		backoff  = flag.Duration("backoff", 0, "base reclaim backoff, doubled per attempt (0 = lease/4)")
		hb       = flag.Duration("heartbeat", 10*time.Second, "telemetry scrape interval for worker health (0 = off)")
		respawns = flag.Int("max-respawns", 0, "worker respawn budget across the run (0 = 2 + 2×workers)")
		dir      = flag.String("dir", "", "farm working directory for the coordinator journal and worker shards (default <output>.farm)")
		resume   = flag.Bool("resume", false, "rebuild the lease table from -dir's coordinator journal and finish the run")
		selgen   = flag.String("selgen", "", "selgen binary to spawn as workers (default: next to this binary, else $PATH)")

		faults    = flag.String("faults", "", "arm fault-injection points in the coordinator, e.g. 'farm.lease.grant=once' (testing only)")
		wFaults   = flag.String("worker-faults", "", "arm fault-injection points in worker 0's first incarnation only, e.g. 'journal.kill=hit:2' — respawns run clean, so the farm must heal the crash (testing only)")
		fseed     = flag.Int64("fault-seed", 1, "seed for probabilistic fault-injection modes")
		events    = flag.String("events", "", "append a structured JSONL event log to this file")
		eventsLvl = flag.String("events-level", "info", "minimum -events level: debug, info, warn, or error")
	)
	flag.Parse()

	tgt, err := target.ByName(*tgtName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
		return 2
	}
	groups, err := driver.SetupFor(tgt.Name, *setup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
		return 2
	}
	reg, err := failpoint.Parse(*faults, *fseed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
		return 2
	}
	bin, err := findSelgen(*selgen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
		return 2
	}
	if *dir == "" {
		*dir = *out + ".farm"
	}

	tracer := obs.New()
	if *events != "" {
		lvl, err := obs.ParseLevel(*eventsLvl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
			return 2
		}
		ef, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
			return 1
		}
		defer ef.Close()
		tracer.SetEventSink(ef, lvl)
	}
	if *verbose {
		tracer.SetEventSink(os.Stderr, obs.LevelInfo)
	}

	// Opts must be what a single-process `selgen` with the same flags
	// would use: the ConfigHash derived from them is the run identity
	// every worker registration and every shard header must match.
	opts := driver.Options{
		Target:             tgt.Name,
		Width:              *width,
		PerGoalTimeout:     *timeout,
		MaxPatternsPerGoal: *maxPat,
		Seed:               *seed,
		SatWorkers:         *satWkr,
		MaxRetries:         *retries,
		DisableCostAware:   !*costAware,
		Obs:                tracer,
	}
	hdr := journal.Header{
		Version:    journal.Version,
		Setup:      *setup,
		Width:      *width,
		Target:     tgt.Name,
		ConfigHash: driver.ConfigHash(groups, opts),
	}

	// Workers get the same synthesis flags (so their ConfigHash agrees)
	// plus an ephemeral telemetry port when the heartbeat is on.
	workerArgs := []string{
		"-target", tgt.Name,
		"-setup", *setup,
		"-width", strconv.Itoa(*width),
		"-timeout", timeout.String(),
		"-max-patterns", strconv.Itoa(*maxPat),
		"-seed", strconv.FormatInt(*seed, 10),
		"-sat-workers", strconv.Itoa(*satWkr),
		"-max-retries", strconv.Itoa(*retries),
		"-cost-aware=" + strconv.FormatBool(*costAware),
	}
	if *hb > 0 {
		workerArgs = append(workerArgs, "-status", "127.0.0.1:0")
	}
	var workerStderr io.Writer
	if *verbose {
		workerStderr = os.Stderr
	}
	spawn := farm.CommandSpawner(bin, workerArgs, workerStderr)
	if *wFaults != "" {
		// Worker 0's first incarnation runs with the faults armed; every
		// other spawn — including worker 0's respawn after the injected
		// crash — runs clean, so the run exercises the heal path without
		// crash-looping.
		armed := farm.CommandSpawner(bin,
			append(append([]string{}, workerArgs...), "-faults", *wFaults), workerStderr)
		clean := spawn
		var mu sync.Mutex
		fired := false
		spawn = func(id int, coordURL, shard string) (farm.Handle, error) {
			mu.Lock()
			arm := id == 0 && !fired
			if arm {
				fired = true
			}
			mu.Unlock()
			if arm {
				return armed(id, coordURL, shard)
			}
			return clean(id, coordURL, shard)
		}
	}

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "selfarm: %v — stopping workers; journals stay intact (again to kill)\n", s)
		close(stop)
		signal.Stop(sigc)
	}()

	start := time.Now()
	lib, rep, err := farm.Run(farm.Config{
		Groups: groups, Opts: opts, Header: hdr,
		Dir:         *dir,
		Workers:     *workers,
		Lease:       *lease,
		MaxAttempts: *attempts,
		Backoff:     *backoff,
		Heartbeat:   *hb,
		MaxRespawns: *respawns,
		Resume:      *resume,
		Stop:        stop,
		Spawn:       spawn,
		Faults:      reg,
		Obs:         tracer,
	})
	if errors.Is(err, farm.ErrStopped) {
		fmt.Fprintf(os.Stderr, "selfarm: run stopped — resume with: selfarm -resume -dir %s (same flags)\n", *dir)
		return exitInterrupted
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
		return 1
	}

	if err := farm.WriteLibrary(*out, lib, reg); err != nil {
		fmt.Fprintf(os.Stderr, "selfarm: %v\n", err)
		return 1
	}

	rep.Driver.WriteTable(os.Stdout)
	fmt.Printf("\nfarm: %d worker(s), %d goal(s) (%d synthesized, %d replayed), %.2f goals/s\n",
		rep.Workers, rep.Goals, rep.Synthesized, rep.Replayed, rep.GoalsPerSec)
	fmt.Printf("farm: %d lease(s) granted, %d reclaimed, %d late completion(s), %d respawn(s), %d heartbeat kill(s), %d shard duplicate(s)\n",
		rep.Granted, rep.Reclaimed, rep.Late, rep.Respawns, rep.Kills, rep.Duplicates)
	if len(rep.Quarantined) > 0 {
		fmt.Printf("farm: %d goal(s) quarantined: %v\n", len(rep.Quarantined), rep.Quarantined)
	}
	fmt.Printf("\n%d rules written to %s in %s\n", len(lib.Rules), *out, time.Since(start).Round(time.Millisecond))
	return 0
}

// findSelgen locates the worker binary: an explicit -selgen wins, then
// a selgen next to this executable (the normal `go build ./...` layout),
// then $PATH.
func findSelgen(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("-selgen %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "selgen")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("selgen"); err == nil {
		return p, nil
	}
	return "", errors.New("cannot find the selgen worker binary (build it next to selfarm or pass -selgen)")
}
