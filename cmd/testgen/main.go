// Command testgen reproduces §7.4 of the paper: it generates a test
// case from every pattern in a rule library, compiles each case with
// the simulated GCC and Clang comparators, and reports how many
// patterns each compiler misses. With -html it also writes the
// expandable report table the paper's artifact produces.
//
// Usage:
//
//	testgen -lib rule-library.json
//	testgen -lib rule-library.json -html test-result.html -c cases/
package main

import (
	"flag"
	"fmt"
	"html"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"selgen/internal/ir"
	"selgen/internal/pattern"
	"selgen/internal/testgen"
)

func main() {
	var (
		libPath  = flag.String("lib", "rule-library.json", "pattern database to test")
		htmlPath = flag.String("html", "", "write an HTML report here")
		caseDir  = flag.String("c", "", "write generated C test sources into this directory")
	)
	flag.Parse()

	f, err := os.Open(*libPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
		os.Exit(1)
	}
	lib, err := pattern.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
		os.Exit(1)
	}

	rep, err := testgen.Run(lib, ir.Ops(), testgen.Comparators(lib.Width))
	if err != nil {
		fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())

	if *caseDir != "" {
		if err := os.MkdirAll(*caseDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
			os.Exit(1)
		}
		for i, c := range rep.Cases {
			name := filepath.Join(*caseDir, fmt.Sprintf("case_%04d.c", i))
			if err := os.WriteFile(name, []byte(c.Source), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d C test cases to %s\n", len(rep.Cases), *caseDir)
	}

	if *htmlPath != "" {
		if err := os.WriteFile(*htmlPath, []byte(renderHTML(rep)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote HTML report to %s\n", *htmlPath)
	}
}

// renderHTML builds the §A.5 report: one row per pattern where at
// least one compiler produced more instructions than expected, cells
// expandable to the C source.
func renderHTML(rep *testgen.Report) string {
	var names []string
	for n := range rep.Missing {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\">" +
		"<title>Missing instruction-selection patterns</title><style>" +
		"table{border-collapse:collapse}td,th{border:1px solid #999;padding:4px 8px}" +
		".bad{background:#fcc}.src{display:none;white-space:pre;font-family:monospace}" +
		"details>summary{cursor:pointer}</style></head><body>\n")
	fmt.Fprintf(&sb, "<h1>Missing patterns (%d test cases)</h1>\n<ul>", len(rep.Cases))
	for _, n := range names {
		fmt.Fprintf(&sb, "<li>unsupported by %s: %d</li>", html.EscapeString(n), rep.Missing[n])
	}
	fmt.Fprintf(&sb, "<li>unsupported by all: %d</li></ul>\n<table><tr><th>goal</th><th>pattern</th>", rep.MissingAll)
	for _, n := range names {
		fmt.Fprintf(&sb, "<th>%s</th>", html.EscapeString(n))
	}
	sb.WriteString("<th>source</th></tr>\n")
	for _, c := range rep.Cases {
		anyBad := false
		for _, n := range names {
			if !c.Supported(n) {
				anyBad = true
			}
		}
		if !anyBad {
			continue
		}
		fmt.Fprintf(&sb, "<tr><td>%s</td><td><code>%s</code></td>",
			html.EscapeString(c.Goal), html.EscapeString(c.Canon))
		for _, n := range names {
			cls := ""
			if !c.Supported(n) {
				cls = " class=\"bad\""
			}
			fmt.Fprintf(&sb, "<td%s>%d</td>", cls, c.InstrCount[n])
		}
		fmt.Fprintf(&sb, "<td><details><summary>C</summary><pre>%s</pre></details></td></tr>\n",
			html.EscapeString(c.Source))
	}
	sb.WriteString("</table></body></html>\n")
	return sb.String()
}
